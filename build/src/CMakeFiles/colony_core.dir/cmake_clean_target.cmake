file(REMOVE_RECURSE
  "libcolony_core.a"
)
