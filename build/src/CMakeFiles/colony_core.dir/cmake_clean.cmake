file(REMOVE_RECURSE
  "CMakeFiles/colony_core.dir/core/txn.cpp.o"
  "CMakeFiles/colony_core.dir/core/txn.cpp.o.d"
  "CMakeFiles/colony_core.dir/core/txn_log.cpp.o"
  "CMakeFiles/colony_core.dir/core/txn_log.cpp.o.d"
  "CMakeFiles/colony_core.dir/core/visibility.cpp.o"
  "CMakeFiles/colony_core.dir/core/visibility.cpp.o.d"
  "libcolony_core.a"
  "libcolony_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
