# Empty dependencies file for colony_core.
# This may be replaced when dependencies are built.
