file(REMOVE_RECURSE
  "libcolony_chat.a"
)
