# Empty dependencies file for colony_chat.
# This may be replaced when dependencies are built.
