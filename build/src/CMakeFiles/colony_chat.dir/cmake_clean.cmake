file(REMOVE_RECURSE
  "CMakeFiles/colony_chat.dir/chat/driver.cpp.o"
  "CMakeFiles/colony_chat.dir/chat/driver.cpp.o.d"
  "CMakeFiles/colony_chat.dir/chat/model.cpp.o"
  "CMakeFiles/colony_chat.dir/chat/model.cpp.o.d"
  "CMakeFiles/colony_chat.dir/chat/trace.cpp.o"
  "CMakeFiles/colony_chat.dir/chat/trace.cpp.o.d"
  "libcolony_chat.a"
  "libcolony_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
