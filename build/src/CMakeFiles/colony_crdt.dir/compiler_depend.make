# Empty compiler generated dependencies file for colony_crdt.
# This may be replaced when dependencies are built.
