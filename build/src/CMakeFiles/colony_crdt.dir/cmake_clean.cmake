file(REMOVE_RECURSE
  "CMakeFiles/colony_crdt.dir/crdt/counter.cpp.o"
  "CMakeFiles/colony_crdt.dir/crdt/counter.cpp.o.d"
  "CMakeFiles/colony_crdt.dir/crdt/maps.cpp.o"
  "CMakeFiles/colony_crdt.dir/crdt/maps.cpp.o.d"
  "CMakeFiles/colony_crdt.dir/crdt/or_set.cpp.o"
  "CMakeFiles/colony_crdt.dir/crdt/or_set.cpp.o.d"
  "CMakeFiles/colony_crdt.dir/crdt/registers.cpp.o"
  "CMakeFiles/colony_crdt.dir/crdt/registers.cpp.o.d"
  "CMakeFiles/colony_crdt.dir/crdt/registry.cpp.o"
  "CMakeFiles/colony_crdt.dir/crdt/registry.cpp.o.d"
  "CMakeFiles/colony_crdt.dir/crdt/rga.cpp.o"
  "CMakeFiles/colony_crdt.dir/crdt/rga.cpp.o.d"
  "libcolony_crdt.a"
  "libcolony_crdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colony_crdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
