
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crdt/counter.cpp" "src/CMakeFiles/colony_crdt.dir/crdt/counter.cpp.o" "gcc" "src/CMakeFiles/colony_crdt.dir/crdt/counter.cpp.o.d"
  "/root/repo/src/crdt/maps.cpp" "src/CMakeFiles/colony_crdt.dir/crdt/maps.cpp.o" "gcc" "src/CMakeFiles/colony_crdt.dir/crdt/maps.cpp.o.d"
  "/root/repo/src/crdt/or_set.cpp" "src/CMakeFiles/colony_crdt.dir/crdt/or_set.cpp.o" "gcc" "src/CMakeFiles/colony_crdt.dir/crdt/or_set.cpp.o.d"
  "/root/repo/src/crdt/registers.cpp" "src/CMakeFiles/colony_crdt.dir/crdt/registers.cpp.o" "gcc" "src/CMakeFiles/colony_crdt.dir/crdt/registers.cpp.o.d"
  "/root/repo/src/crdt/registry.cpp" "src/CMakeFiles/colony_crdt.dir/crdt/registry.cpp.o" "gcc" "src/CMakeFiles/colony_crdt.dir/crdt/registry.cpp.o.d"
  "/root/repo/src/crdt/rga.cpp" "src/CMakeFiles/colony_crdt.dir/crdt/rga.cpp.o" "gcc" "src/CMakeFiles/colony_crdt.dir/crdt/rga.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colony_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
