file(REMOVE_RECURSE
  "libcolony_crdt.a"
)
