
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_clock.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_clock.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_clock.cpp.o.d"
  "/root/repo/bench/micro_crdt.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_crdt.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_crdt.cpp.o.d"
  "/root/repo/bench/micro_epaxos.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_epaxos.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_epaxos.cpp.o.d"
  "/root/repo/bench/micro_journal.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_journal.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_journal.cpp.o.d"
  "/root/repo/bench/micro_visibility.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_visibility.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_visibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/colony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_crdt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/colony_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
