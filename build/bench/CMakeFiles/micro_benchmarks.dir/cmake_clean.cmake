file(REMOVE_RECURSE
  "CMakeFiles/micro_benchmarks.dir/micro_clock.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_clock.cpp.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_crdt.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_crdt.cpp.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_epaxos.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_epaxos.cpp.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_journal.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_journal.cpp.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_visibility.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_visibility.cpp.o.d"
  "micro_benchmarks"
  "micro_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
