file(REMOVE_RECURSE
  "CMakeFiles/fig6_peer_disconnect.dir/fig6_peer_disconnect.cpp.o"
  "CMakeFiles/fig6_peer_disconnect.dir/fig6_peer_disconnect.cpp.o.d"
  "fig6_peer_disconnect"
  "fig6_peer_disconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_peer_disconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
