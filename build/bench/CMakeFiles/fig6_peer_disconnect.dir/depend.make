# Empty dependencies file for fig6_peer_disconnect.
# This may be replaced when dependencies are built.
