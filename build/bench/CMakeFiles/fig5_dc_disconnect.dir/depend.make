# Empty dependencies file for fig5_dc_disconnect.
# This may be replaced when dependencies are built.
