file(REMOVE_RECURSE
  "CMakeFiles/fig5_dc_disconnect.dir/fig5_dc_disconnect.cpp.o"
  "CMakeFiles/fig5_dc_disconnect.dir/fig5_dc_disconnect.cpp.o.d"
  "fig5_dc_disconnect"
  "fig5_dc_disconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dc_disconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
