# Empty dependencies file for ablation_kstability.
# This may be replaced when dependencies are built.
