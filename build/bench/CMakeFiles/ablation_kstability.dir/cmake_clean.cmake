file(REMOVE_RECURSE
  "CMakeFiles/ablation_kstability.dir/ablation_kstability.cpp.o"
  "CMakeFiles/ablation_kstability.dir/ablation_kstability.cpp.o.d"
  "ablation_kstability"
  "ablation_kstability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kstability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
