# Empty compiler generated dependencies file for fig7_migration.
# This may be replaced when dependencies are built.
