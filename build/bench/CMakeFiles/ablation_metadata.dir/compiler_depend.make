# Empty compiler generated dependencies file for ablation_metadata.
# This may be replaced when dependencies are built.
