file(REMOVE_RECURSE
  "CMakeFiles/ablation_metadata.dir/ablation_metadata.cpp.o"
  "CMakeFiles/ablation_metadata.dir/ablation_metadata.cpp.o.d"
  "ablation_metadata"
  "ablation_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
